"""Bench: regenerate Fig. 9 (trace-driven load sweeps).

The full figure is 5 apps x 9 loads x 5 schemes; the bench runs two
representative apps (tight masstree, variable shore) over a reduced load
grid — EXPERIMENTS.md records a full run.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig09_load_sweep

LOADS = (0.2, 0.4, 0.5, 0.7)
N = 3000


def _sweep(app):
    return fig09_load_sweep.run_load_sweep(app, loads=LOADS,
                                           num_requests=N)


def test_fig9_masstree(benchmark):
    res = run_once(benchmark, _sweep, "masstree")
    print("\n" + res.table())
    idx = {ld: i for i, ld in enumerate(res.loads)}
    # Flat adaptive tail below 50% load vs rising fixed tail.
    for scheme in ("StaticOracle", "Rubik"):
        assert res.tail_ms[scheme][idx[0.4]] <= res.bound_ms * 1.15
    # DynamicOracle is the energy envelope at low load.
    assert res.energy_mj["DynamicOracle"][idx[0.2]] <= min(
        res.energy_mj[s][idx[0.2]]
        for s in ("Fixed", "StaticOracle", "Rubik")) * 1.05
    # Rubik tracks DynamicOracle for tightly-clustered service times.
    assert res.energy_mj["Rubik"][idx[0.4]] <= \
        res.energy_mj["StaticOracle"][idx[0.4]]


def test_fig9_shore(benchmark):
    res = run_once(benchmark, _sweep, "shore")
    print("\n" + res.table())
    idx = {ld: i for i, ld in enumerate(res.loads)}
    # With variable service times Rubik guards against long requests and
    # gives up part of DynamicOracle's savings (paper Sec. 5.3).
    assert res.energy_mj["Rubik"][idx[0.4]] >= \
        res.energy_mj["DynamicOracle"][idx[0.4]]
    # Above the bound load all schemes' tails rise (shaded region).
    assert res.tail_ms["Rubik"][idx[0.7]] > res.bound_ms

"""Bench: regenerate Fig. 2 (workload variability analysis)."""

from benchmarks.conftest import run_once
from repro.experiments import fig02_variability

N = 6000


def test_fig2a_instantaneous_qps(benchmark):
    res = run_once(benchmark, fig02_variability.run_fig2a, num_requests=N)
    print("\n" + res.table())
    # Instantaneous load varies substantially around the mean for every
    # app; the spread narrows with request rate (Poisson window counts
    # concentrate as 1/sqrt(rate*window)), so the "nearly zero to more
    # than twice the average" extremes show on the lower-rate apps.
    for app, vals in res.per_app.items():
        assert vals[-1] > 1.25, app
        assert vals[0] < 0.8, app
    assert any(vals[-1] > 2.0 for vals in res.per_app.values())
    assert any(vals[0] < 0.4 for vals in res.per_app.values())


def test_fig2b_masstree_trace(benchmark):
    res = run_once(benchmark, fig02_variability.run_fig2b, num_requests=N)
    print("\n" + res.table())
    assert len(res.times) > 4


def test_fig2c_normalized_tail(benchmark):
    res = run_once(benchmark, fig02_variability.run_fig2c, num_requests=N)
    print("\n" + res.table())
    # Queueing dominates: normalized tail well above 1 by 50% load, and
    # specjbb is the most queueing-amplified app (paper Fig. 2c).
    idx50 = res.loads.index(0.5)
    for app, vals in res.per_app.items():
        assert vals[idx50] > 1.8, app
    assert res.per_app["specjbb"][idx50] == max(
        v[idx50] for v in res.per_app.values())

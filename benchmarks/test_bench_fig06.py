"""Bench: regenerate Fig. 6 (core power savings matrix)."""

from benchmarks.conftest import run_once
from repro.experiments import fig06_power_savings

N = 4000  # per run; full paper counts are used in EXPERIMENTS.md runs


def test_fig6_power_savings(benchmark):
    res = run_once(benchmark, fig06_power_savings.run_fig6,
                   num_requests=N, seeds=(21,))
    print("\n" + res.table())
    # Headline shapes (paper Sec. 5.2):
    # 1. At 50% load StaticOracle saves nothing...
    assert abs(res.mean_savings(0.5, "StaticOracle")) < 0.03
    # ...AdrenalineOracle saves little...
    assert res.mean_savings(0.5, "AdrenalineOracle") < 0.08
    # ...Rubik still saves meaningfully.
    assert res.mean_savings(0.5, "Rubik") > 0.08
    # 2. Rubik's mean savings at 30% load are substantial.
    assert res.mean_savings(0.3, "Rubik") > 0.25
    # 3. Rubik beats StaticOracle at every load on average.
    for load in res.loads:
        assert res.mean_savings(load, "Rubik") > \
            res.mean_savings(load, "StaticOracle")

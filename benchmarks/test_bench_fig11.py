"""Bench: regenerate Fig. 11 (real-system evaluation, 130 us DVFS lag)."""

from benchmarks.conftest import run_once
from repro.experiments import fig11_real_system

N = 4000


def test_fig11_real_system(benchmark):
    res = run_once(benchmark, fig11_real_system.run_fig11, num_requests=N)
    print("\n" + res.table())
    assert res.rubik_meets_bound
    # masstree (short requests): DVFS lag erodes Rubik's edge as load
    # grows — the gap at 50% is smaller than at 30% (paper Sec. 5.5).
    m30 = res.savings["masstree"][0.3]
    m50 = res.savings["masstree"][0.5]
    gap30 = m30["Rubik"] - m30["StaticOracle"]
    gap50 = m50["Rubik"] - m50["StaticOracle"]
    assert gap30 > gap50 - 0.02
    # moses (long requests): Rubik keeps a wide edge even at 50% load.
    mo50 = res.savings["moses"][0.5]
    assert mo50["Rubik"] > mo50["StaticOracle"] + 0.05
    # Rubik saves substantial power at low load (paper: 51% for moses).
    assert res.savings["moses"][0.3]["Rubik"] > 0.2

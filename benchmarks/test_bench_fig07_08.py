"""Bench: regenerate Figs. 7 and 8 (latency CDFs + frequency histograms)."""

from benchmarks.conftest import run_once
from repro.experiments import fig07_fig08_cdfs

N = 5000


def test_fig7_masstree(benchmark):
    res = run_once(benchmark, fig07_fig08_cdfs.run_fig7, num_requests=N)
    print("\n" + res.table())
    rubik = res.cdf_quantiles_ms["Rubik"]
    static = res.cdf_quantiles_ms["StaticOracle"]
    # Rubik delays short requests (low percentiles shift right)...
    assert rubik[0] > static[0]
    # ...while the tail stays at the bound.
    assert rubik[-2] <= res.bound_ms * 1.10  # p95 column
    # Most busy time at low frequencies (Fig. 7b).
    low = sum(v for f, v in res.rubik_freq_hist.items() if f <= 1.6e9)
    assert low > 0.5


def test_fig8_xapian(benchmark):
    res = run_once(benchmark, fig07_fig08_cdfs.run_fig8, num_requests=N)
    print("\n" + res.table())
    rubik = res.cdf_quantiles_ms["Rubik"]
    static = res.cdf_quantiles_ms["StaticOracle"]
    # Variable service times -> smaller (but present) low-end shift.
    assert rubik[0] > static[0]
    assert rubik[-2] <= res.bound_ms * 1.10

"""Bench: regenerate Fig. 15 (colocation tail-latency distributions).

The full figure is 100 (app, mix) pairs x 4 schemes; the bench runs a
4-mix sub-sample across all apps (20 pairs), which already exposes the
scheme ordering. EXPERIMENTS.md records a fuller run.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig15_coloc_tails


def test_fig15_coloc_tails(benchmark):
    # Three apps x 4 mixes at moderate run lengths; the heavy-tailed
    # apps (specjbb) need paper-scale run lengths for stable tail
    # estimates and are covered by the full run in EXPERIMENTS.md.
    res = run_once(benchmark, fig15_coloc_tails.run_fig15,
                   num_mixes=4, apps=("masstree", "shore", "xapian"),
                   requests_per_core=1400)
    print("\n" + res.table())
    # Paper Sec. 7.1 ordering: HW schemes grossly violate, StaticColoc
    # violates for some mixes, RubikColoc holds everywhere.
    assert res.worst("HW-TPW") > 2.0
    assert res.worst("HW-TPW") > res.worst("StaticColoc")
    assert res.violation_fraction("RubikColoc") <= 0.05
    assert res.worst("RubikColoc") <= 1.1

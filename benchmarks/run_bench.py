"""Hot-path benchmark harness — the repo's tracked perf trajectory.

Times the three layers the paper's microsecond-scale claims rest on and
writes one ``BENCH_PR<n>.json`` per PR so regressions are visible across
the repo's history:

* ``table_build``: :class:`~repro.core.tail_tables.TargetTailTables`
  construction (the paper's ~0.2 ms periodic refresh), both lazily (as
  the controller uses it) and fully materialized.
* ``controller_events``: end-to-end event rate of a Rubik-controlled
  simulation (arrivals + completions + DVFS transitions per second of
  wall-clock).
* ``load_sweep``: wall-clock of an end-to-end Fig. 9 load sweep for one
  app (all five schemes per load) — the repo's headline experiment
  benchmark.
* ``regenerate``: the unified experiment-runner flow
  (:func:`repro.experiments.runner.regenerate`) over a driver subset at
  reduced scale — one shared worker pool, memoized latency bounds — the
  regeneration-matrix counterpart of ``load_sweep``.
* ``refresh_churn``: the PR 4 refresh subsystem — cold-vs-warm runs of
  the identical trace through the process-wide ``TailTableCache``, a
  steady-state (constant-demand) run whose snapshot fingerprint never
  moves, and the incremental-vs-rebuild snapshot micro-benchmark.
* ``decision_kernel``: the PR 5 incremental Eq. 2 kernel — same-trace
  walls of the scalar/vectorized/kernel decision paths at moderate load
  and in overload (where the O(1) event paths dominate), the kernel's
  decision-path counters, and the steady-state constant-demand guard
  (refreshes must carry kernel state, never invalidate it). Since PR 6
  the A/B includes the native C path when its library builds.
* ``native_kernel``: the PR 6 native C decision/event kernel — build
  time and fallback status from the build-on-first-use loader, span
  engagement + decision counters of a default run, and the native
  path's speedups over the Python kernel and the PR 5 trajectory
  point (the headline: the overload wall vs BENCH_PR5's kernel).
* ``regenerate_cached``: the PR 7 content-addressed artifact store —
  the same regenerate subset cold (empty store: every cell computes and
  persists) then warm (every cell replays from disk), with the store's
  hit/miss/put counters for both runs. The headline is the warm wall: a
  fully-cached regeneration must recompute zero cells.
* ``resilience``: the PR 9 resilient executor — a fig06-shaped cell
  sweep through plain ``parallel_map`` and then ``resilient_map`` under
  the default ``RetryPolicy`` with no fault plan active. The guard is
  the contract, not a speedup: bitwise-identical results, all-zero
  retry/failure/rebuild counters, and small overhead over the baseline
  dispatch.
* ``fleet``: the PR 10 sharded fleet — power-curve calibration (anchor
  simulation cells) timed once against a throwaway artifact store, then
  the routed cluster scenario at each tracked size with the anchors
  warm, so the per-size wall measures placement + routing +
  integration (interpolation, not simulation) and reports
  servers-per-second. The shard-scaling A/B times 1 vs 2 shards at the
  largest size and asserts the two results bitwise-identical
  (invariant 21 — the layer's whole point).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full, writes BENCH_PR1.json
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # <60 s smoke, no file by default
    PYTHONPATH=src python benchmarks/run_bench.py --output out.json

The ``--quick`` mode runs the same benchmarks at reduced scale; a pytest
smoke test (``benchmarks/test_perf_smoke.py``, marker ``perf_smoke``)
drives it in the tier-1 flow so harness breakage is caught without
running full figures.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import io
import json
import math
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

from repro.core._native import build as native_build
from repro.core.controller import Rubik
from repro.lint import lint_paths
from repro.core.histogram import Histogram
from repro.core.profiler import DemandProfiler
from repro.core.table_cache import TABLE_CACHE
from repro.core.tail_tables import TargetTailTables
from repro.experiments import artifacts, runner
from repro.experiments.common import _compare_seed, latency_bound, make_context
from repro.experiments.fig09_load_sweep import run_load_sweep
from repro.perf import parallel_map, pools_created
from repro.fleet import build_power_curves, run_routed_fleet
from repro.resilience import RetryPolicy, SweepStats, faults, resilient_map
from repro.sim.server import run_trace
from repro.sim.trace import Trace
from repro.workloads.apps import APPS

#: Which PR this bench file tracks (bump per perf-relevant PR).
PR_NUMBER = 10

#: Seed-measured reference numbers for the same workloads, recorded on
#: the machine that produced BENCH_PR1.json before the PR 1 fast paths
#: landed (commit 94d2b32). Speedup fields compare against these.
SEED_BASELINE = {
    "table_build_pair_ms": 17.95,
    "load_sweep_s": 7.97,
    "rubik_run_s": 0.603,
}

#: PR 1's recorded numbers (BENCH_PR1.json), the previous trajectory
#: point. PR 2's lever: lazy DVFS transitions (no heap event per change)
#: and batched segment accounting.
PR1_BASELINE = {
    "rubik_run_s": 0.15761851400020532,
    "rubik_run_events": 14685,
    "load_sweep_s": 1.955133713000123,
}

#: PR 2's recorded numbers (BENCH_PR2.json). PR 3's lever: the unified
#: runner (shared worker pool + memoized latency bounds); single-run hot
#: paths are untouched, so ``rubik_run``/``load_sweep`` should hold
#: steady and ``regenerate`` becomes the new tracked section.
PR2_BASELINE = {
    "rubik_run_s": 0.12004652299947338,
    "load_sweep_s": 1.673809859999892,
}

#: PR 3's recorded numbers (BENCH_PR3.json). PR 4's lever: incremental
#: demand profiling (O(new samples) snapshots) and the fingerprint-keyed
#: ``TailTableCache`` — repeated/steady-state demand windows reuse
#: built tables outright instead of rebuilding per refresh.
PR3_BASELINE = {
    "rubik_run_s": 0.1512239409985341,
    "load_sweep_s": 1.7340111559988145,
    "regenerate_s": 7.398183022000012,
}

#: PR 4's recorded numbers (BENCH_PR4.json). PR 5's lever: the
#: incremental Eq. 2 decision kernel (lean/certificate folds + O(1)
#: event paths) dispatched by default, plus fig01/02/10/11/12 flattened
#: onto the parallel runner.
PR4_BASELINE = {
    "rubik_run_s": 0.09476325500145322,
    "load_sweep_s": 1.5304093200011266,
    "regenerate_s": 6.822867158000008,
}

#: PR 5's recorded numbers (BENCH_PR5.json). PR 6's lever: the native C
#: decision/event kernel — the Eq. 2 folds plus the whole event-step
#: inner loop in one shared library, dispatched by default when it
#: builds. The decision walls are the same-trace A/B numbers from
#: BENCH_PR5's ``decision_kernel`` section; the overload kernel wall is
#: the reference the native path's headline speedup is measured against.
PR5_BASELINE = {
    "rubik_run_s": 0.08849415900112945,
    "load_sweep_s": 1.4732989900003304,
    "regenerate_s": 6.105114543999662,
    "decision_moderate_kernel_s": 0.09099380199950247,
    "decision_overload_kernel_s": 0.05173138600002858,
    "decision_overload_scalar_s": 1.9314146699998673,
}

#: PR 6's recorded numbers (BENCH_PR6.json). PR 7's lever: the
#: content-addressed artifact store — single-run hot paths are
#: untouched (``rubik_run``/``load_sweep`` should hold steady), the
#: uncached ``regenerate`` flow pays only fingerprint overhead, and the
#: new ``regenerate_cached`` section tracks the warm-replay win.
PR6_BASELINE = {
    "rubik_run_s": 0.02402407299996412,
    "load_sweep_s": 0.8808633009994082,
    "regenerate_s": 6.873982521000471,
}

#: PR 7's recorded numbers (BENCH_PR7.json); PR 8 (the invariant
#: checker) recorded no point — lint runs beside the hot paths, not in
#: them. PR 9's lever is robustness, not speed: the resilient executor
#: is opt-in, so the tracked walls should hold steady and the new
#: ``resilience`` section guards that a fault-free ``resilient_map`` is
#: bitwise-identical to ``parallel_map`` at small overhead.
PR7_BASELINE = {
    "rubik_run_s": 0.0265515190003498,
    "load_sweep_s": 1.1242870790001689,
    "regenerate_s": 7.254527476000476,
}

#: PR 9's recorded numbers (BENCH_PR9.json). PR 10's lever is scale,
#: not single-run speed: the sharded fleet layer runs beside the hot
#: paths (``rubik_run``/``load_sweep``/``regenerate`` should hold
#: steady) and the new ``fleet`` section tracks cluster-scenario
#: throughput in servers per second.
PR9_BASELINE = {
    "rubik_run_s": 0.0201195360004931,
    "load_sweep_s": 0.7748254660000384,
    "regenerate_s": 6.8051143849988875,
}

#: Events-per-request ceiling for the Rubik run: one arrival + one
#: completion per request and nothing else (DVFS transitions no longer
#: consume simulator events). The perf_smoke guard fails if event churn
#: creeps back in.
EVENTS_PER_REQUEST_BUDGET = 2.05

BENCH_APP = "masstree"
BENCH_SEED = 21

FULL = {
    "table_reps": 30,
    "run_requests": 4000,
    "run_load": 0.5,
    "sweep_loads": (0.2, 0.4, 0.5, 0.6, 0.8),
    "sweep_requests": 4000,
    "regen_experiments": ("fig06", "table1", "ablations"),
    "regen_requests": 800,
    "resilience_requests": 400,
    "snapshot_iters": 300,
    "fleet_servers": (500, 2000),
    "fleet_epochs": 6,
    "fleet_rpc": 400,
}
QUICK = {
    "table_reps": 5,
    "run_requests": 1200,
    "run_load": 0.5,
    "sweep_loads": (0.3, 0.6),
    "sweep_requests": 1200,
    "regen_experiments": ("table1", "ablations"),
    "regen_requests": 600,
    "resilience_requests": 200,
    "snapshot_iters": 60,
    "fleet_servers": (60, 150),
    "fleet_epochs": 3,
    "fleet_rpc": 100,
}


def _lognormal_hist(seed: int, mean: float, cv: float,
                    n: int = 2000) -> Histogram:
    sigma2 = math.log(1 + cv * cv)
    mu = math.log(mean) - sigma2 / 2
    samples = np.random.default_rng(seed).lognormal(
        mu, math.sqrt(sigma2), n)
    return Histogram.from_samples(samples)


def _best_of(fn: Callable[[], None], reps: int) -> float:
    """Best wall-clock of ``reps`` runs (least-noise estimator)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_table_build(reps: int) -> Dict[str, float]:
    """Tail-table refresh cost: lazy (controller-visible) and full."""
    cycles_samples = _lognormal_hist(0, 1e6, 0.3)
    memory_samples = _lognormal_hist(1, 1e-4, 0.3)

    lazy_s = _best_of(
        lambda: TargetTailTables(cycles_samples, memory_samples), reps)

    def full_build() -> None:
        tables = TargetTailTables(cycles_samples, memory_samples)
        tables.cycles.materialize()
        tables.memory.materialize()

    full_s = _best_of(full_build, reps)
    return {
        "lazy_pair_ms": lazy_s * 1e3,
        "materialized_pair_ms": full_s * 1e3,
        "materialized_builds_per_s": 1.0 / full_s,
        "speedup_vs_seed": SEED_BASELINE["table_build_pair_ms"] / (full_s * 1e3),
    }


def bench_controller_events(num_requests: int, load: float,
                            reps: int = 3) -> Dict[str, float]:
    """Event-processing rate of one Rubik-controlled run.

    Best-of-``reps`` wall clock (same estimator as the table bench — a
    single cold run was noise-dominated on shared machines); the event
    count is deterministic, so it comes from the last run. The cache is
    cleared once up front, so rep 1 pays cold table builds and reps 2+
    run fingerprint-warm — best-of therefore tracks the steady-state
    (reuse) path, which is the refresh subsystem's operating point; the
    ``refresh_churn`` section reports cold and warm walls separately.
    """
    app = APPS[BENCH_APP]
    context = make_context(app, BENCH_SEED, num_requests)
    trace = Trace.generate_at_load(app, load, num_requests, BENCH_SEED)
    TABLE_CACHE.clear()
    wall = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        result = run_trace(trace, Rubik(), context)
        wall = min(wall, time.perf_counter() - t0)
    out = {
        "wall_s": wall,
        "reps": reps,
        "events": result.events_processed,
        "events_per_request": result.events_processed / num_requests,
        "events_per_s": result.events_processed / wall,
        "requests_per_s": len(result.requests) / wall,
    }
    if num_requests == FULL["run_requests"]:
        out["speedup_vs_seed"] = SEED_BASELINE["rubik_run_s"] / wall
        out["speedup_vs_pr1"] = PR1_BASELINE["rubik_run_s"] / wall
        out["speedup_vs_pr2"] = PR2_BASELINE["rubik_run_s"] / wall
        out["speedup_vs_pr3"] = PR3_BASELINE["rubik_run_s"] / wall
        out["speedup_vs_pr4"] = PR4_BASELINE["rubik_run_s"] / wall
        out["speedup_vs_pr5"] = PR5_BASELINE["rubik_run_s"] / wall
        out["speedup_vs_pr6"] = PR6_BASELINE["rubik_run_s"] / wall
        out["speedup_vs_pr7"] = PR7_BASELINE["rubik_run_s"] / wall
        out["speedup_vs_pr9"] = PR9_BASELINE["rubik_run_s"] / wall
        out["events_vs_pr1"] = (result.events_processed
                                / PR1_BASELINE["rubik_run_events"])
    return out


def bench_load_sweep(loads, num_requests: int) -> Dict[str, float]:
    """End-to-end Fig. 9 sweep for one app (all five schemes per load)."""
    t0 = time.perf_counter()
    run_load_sweep(BENCH_APP, loads=loads, num_requests=num_requests,
                   seed=BENCH_SEED)
    wall = time.perf_counter() - t0
    out = {"wall_s": wall, "points": len(loads)}
    if tuple(loads) == FULL["sweep_loads"] and \
            num_requests == FULL["sweep_requests"]:
        out["speedup_vs_seed"] = SEED_BASELINE["load_sweep_s"] / wall
        out["speedup_vs_pr1"] = PR1_BASELINE["load_sweep_s"] / wall
        out["speedup_vs_pr2"] = PR2_BASELINE["load_sweep_s"] / wall
        out["speedup_vs_pr3"] = PR3_BASELINE["load_sweep_s"] / wall
        out["speedup_vs_pr4"] = PR4_BASELINE["load_sweep_s"] / wall
        out["speedup_vs_pr5"] = PR5_BASELINE["load_sweep_s"] / wall
        out["speedup_vs_pr6"] = PR6_BASELINE["load_sweep_s"] / wall
        out["speedup_vs_pr7"] = PR7_BASELINE["load_sweep_s"] / wall
        out["speedup_vs_pr9"] = PR9_BASELINE["load_sweep_s"] / wall
    return out


def bench_regenerate(experiments, num_requests: int) -> Dict[str, float]:
    """The unified experiment-runner flow over a driver subset.

    Times ``runner.regenerate`` (reports suppressed — stdout is not the
    thing being measured) and records the subsystem's two structural
    guarantees alongside the wall-clock: how many worker pools the flow
    spawned (at most one; zero on a single-CPU machine, where everything
    stays on the serial path) and how many latency-bound replays the
    memo actually ran vs. how many call sites asked. The bound counts
    come from this process's cache, so they describe the full flow only
    when it stayed serial; once a pool spawns, each worker holds its own
    (uninstrumented) cache, and the counts are reported as ``None``
    rather than pretending the parent saw everything.
    """
    latency_bound.cache_clear()
    pools_before = pools_created()
    t0 = time.perf_counter()
    with contextlib.redirect_stdout(io.StringIO()):
        reports = runner.regenerate(experiments, num_requests=num_requests)
    wall = time.perf_counter() - t0
    pools = pools_created() - pools_before
    bounds = latency_bound.cache_info()
    serial = pools == 0
    out = {
        "wall_s": wall,
        "experiments": list(reports),
        "pools_created": pools,
        "latency_bound_computed": bounds.misses if serial else None,
        "latency_bound_requested":
            bounds.misses + bounds.hits if serial else None,
    }
    if tuple(experiments) == FULL["regen_experiments"] and \
            num_requests == FULL["regen_requests"]:
        out["speedup_vs_pr3"] = PR3_BASELINE["regenerate_s"] / wall
        out["speedup_vs_pr4"] = PR4_BASELINE["regenerate_s"] / wall
        out["speedup_vs_pr5"] = PR5_BASELINE["regenerate_s"] / wall
        out["speedup_vs_pr6"] = PR6_BASELINE["regenerate_s"] / wall
        out["speedup_vs_pr7"] = PR7_BASELINE["regenerate_s"] / wall
        out["speedup_vs_pr9"] = PR9_BASELINE["regenerate_s"] / wall
    return out


def bench_regenerate_cached(experiments, num_requests: int) -> Dict:
    """The PR 7 artifact store: cold fill vs warm replay.

    Runs the same ``regenerate`` subset twice against a store rooted in
    a throwaway temp directory (the on-disk store under test, without
    touching the developer's ``.repro-artifacts/``): the cold pass
    computes and persists every cell, the warm pass must serve every
    cell from disk (zero misses, zero puts — the ``perf_smoke`` guard).
    The memoized latency bound is cleared before each pass so the warm
    wall measures the store, not the in-process memo.
    """
    with tempfile.TemporaryDirectory() as tmp:
        store = artifacts.ArtifactStore(Path(tmp))
        with artifacts.activate(store):
            def one_pass() -> float:
                latency_bound.cache_clear()
                t0 = time.perf_counter()
                with contextlib.redirect_stdout(io.StringIO()):
                    runner.regenerate(experiments,
                                      num_requests=num_requests)
                return time.perf_counter() - t0

            cold_wall = one_pass()
            cold = store.stats()
            store.reset_stats()
            warm_wall = one_pass()
            warm = store.stats()
    counter_keys = ("hits", "misses", "puts", "errors")
    return {
        "experiments": list(experiments),
        "cells": cold["puts"],
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "warm_speedup_vs_cold": cold_wall / warm_wall,
        "cold": {k: cold[k] for k in counter_keys},
        "warm": {k: warm[k] for k in counter_keys},
        "warm_per_driver": warm["per_driver"],
    }


def bench_resilience(num_requests: int) -> Dict:
    """The PR 9 resilient executor: fault-free cost of the hardening.

    Runs the same fig06-shaped cell list through plain ``parallel_map``
    and then :func:`repro.resilience.resilient_map` under the default
    :class:`~repro.resilience.RetryPolicy` with no fault plan active
    (the section records that, so a trajectory point taken with
    ``REPRO_FAULT_PLAN`` exported is self-incriminating). The
    ``perf_smoke`` guard pins the contract: bitwise-identical results,
    all-zero executor counters, small dispatch overhead. A warm-up pass
    runs first so both timed passes see the same warm table cache.
    """
    points = [(APPS[name], load, BENCH_SEED, num_requests, ("Rubik",))
              for name in ("masstree", "xapian") for load in (0.3, 0.5)]
    parallel_map(_compare_seed, points)  # warm caches for both passes

    t0 = time.perf_counter()
    baseline = parallel_map(_compare_seed, points)
    baseline_wall = time.perf_counter() - t0

    stats = SweepStats()
    t0 = time.perf_counter()
    hardened = resilient_map(_compare_seed, points,
                             policy=RetryPolicy(), stats=stats)
    resilient_wall = time.perf_counter() - t0

    return {
        "points": len(points),
        "fault_plan_active": faults.active_plan() is not None,
        "baseline_wall_s": baseline_wall,
        "resilient_wall_s": resilient_wall,
        "overhead_vs_baseline": resilient_wall / baseline_wall,
        "identical": hardened == baseline,
        "retries": stats.retries,
        "failures": stats.failures,
        "timeouts": stats.timeouts,
        "worker_losses": stats.worker_losses,
        "pool_rebuilds": stats.pool_rebuilds,
        "degraded_serial": stats.degraded_serial,
    }


def bench_fleet(sizes, num_epochs: int, requests_per_core: int) -> Dict:
    """The PR 10 sharded fleet: cluster-scenario throughput + invariance.

    Calibration (the per-(app, anchor-load) simulation cells behind the
    power curves) is timed once against a throwaway artifact store;
    every scenario run afterwards replays those anchors from disk, so
    the per-size walls measure what the layer claims is cheap —
    placement draws, routing epochs, and vectorized integration — and
    the ``servers_per_s`` figures scale with fleet size instead of
    being flat-dominated by the fixed simulation cost. The shard A/B at
    the largest size reruns the scenario with 2 shards (different cell
    fingerprints, so both sides compute their shards live) and asserts
    the result bitwise-identical to the 1-shard reference
    (invariant 21); ``perf_smoke`` pins that flag.
    """
    sizes = tuple(sizes)
    with tempfile.TemporaryDirectory() as tmp:
        store = artifacts.ArtifactStore(Path(tmp))
        with artifacts.activate(store):
            t0 = time.perf_counter()
            build_power_curves(BENCH_SEED, requests_per_core)
            calibration_wall = time.perf_counter() - t0
            anchor_cells = store.stats()["puts"]

            scale: Dict[str, Dict] = {}
            results = {}
            for n in sizes:
                t0 = time.perf_counter()
                result = run_routed_fleet(
                    num_servers=n, seed=BENCH_SEED,
                    num_epochs=num_epochs, num_shards=1,
                    requests_per_core=requests_per_core)
                wall = time.perf_counter() - t0
                results[n] = result
                scale[str(n)] = {
                    "wall_s": wall,
                    "servers_per_s": n / wall,
                    "energy_savings_frac": result.energy_savings_frac,
                    "overloaded_servers": result.overloaded_servers,
                    "baseline_shed_load": result.baseline_shed_load,
                    "routed_shed_load": result.routed_shed_load,
                }

            largest = max(sizes)
            t0 = time.perf_counter()
            sharded = run_routed_fleet(
                num_servers=largest, seed=BENCH_SEED,
                num_epochs=num_epochs, num_shards=2,
                requests_per_core=requests_per_core)
            sharded_wall = time.perf_counter() - t0

    return {
        "num_epochs": num_epochs,
        "requests_per_core": requests_per_core,
        "calibration_wall_s": calibration_wall,
        "anchor_cells": anchor_cells,
        "scale": scale,
        "shard_scaling": {
            "servers": largest,
            "one_shard_wall_s": scale[str(largest)]["wall_s"],
            "two_shard_wall_s": sharded_wall,
            "identical": sharded.equals(results[largest]),
        },
    }


def _loop_time(fn: Callable[[], object], iters: int) -> float:
    """Mean wall-clock per call over ``iters`` calls (µs-scale probes)."""
    t0 = time.perf_counter()
    for _ in range(iters):
        fn()
    return (time.perf_counter() - t0) / iters


def bench_refresh_churn(num_requests: int, load: float,
                        snapshot_iters: int) -> Dict:
    """The PR 4 refresh subsystem, three ways.

    * **cold vs warm**: the identical trace twice through a cleared
      process-wide ``TailTableCache`` — the second run's refreshes are
      all fingerprint hits (repeated A/B runs, bench reps, and identical
      windows across experiment variants are the real-world shape).
    * **steady state**: a constant-demand (``service_cv=0``) variant of
      the bench app; its demand window normalizes to the same pmf at
      every refresh, so the run rebuilds tables exactly once and reuses
      thereafter (the ``perf_smoke`` guard).
    * **snapshot micro-bench**: the incremental profiler snapshot vs the
      from-scratch double pass every refresh paid through PR 3
      (``list()`` + ``Histogram.from_samples`` + ``max()`` per stream).
    """
    app = APPS[BENCH_APP]
    context = make_context(app, BENCH_SEED, num_requests)
    trace = Trace.generate_at_load(app, load, num_requests, BENCH_SEED)

    TABLE_CACHE.clear()
    TABLE_CACHE.reset_stats()
    cold_rubik = Rubik()
    t0 = time.perf_counter()
    run_trace(trace, cold_rubik, context)
    cold_wall = time.perf_counter() - t0
    warm_rubik = Rubik()
    t0 = time.perf_counter()
    run_trace(trace, warm_rubik, context)
    warm_wall = time.perf_counter() - t0

    steady_app = dataclasses.replace(app, service_cv=0.0, long_fraction=0.0)
    steady_context = make_context(steady_app, BENCH_SEED, num_requests)
    steady_trace = Trace.generate_at_load(
        steady_app, load, num_requests, BENCH_SEED)
    steady_rubik = Rubik()
    run_trace(steady_trace, steady_rubik, steady_context)

    profiler = DemandProfiler()
    rng = np.random.default_rng(5)
    for c, m in zip(rng.lognormal(13, 0.3, profiler.window),
                    rng.lognormal(-9, 0.3, profiler.window)):
        profiler.observe(float(c), float(m))
    incremental_s = _loop_time(profiler.snapshot, snapshot_iters)

    def rebuild_snapshot() -> None:
        # PR 3's snapshot, verbatim: re-bucket the full window twice.
        samples = list(profiler._cycles.samples)
        mem_samples = list(profiler._memory.samples)
        Histogram.from_samples(samples, profiler.num_buckets)
        if max(mem_samples) > 0:
            Histogram.from_samples(mem_samples, profiler.num_buckets)

    rebuild_s = _loop_time(rebuild_snapshot, snapshot_iters)

    return {
        "refreshes": cold_rubik.refresh_stats.snapshots,
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "warm_speedup_vs_cold": cold_wall / warm_wall,
        "cold": cold_rubik.refresh_stats.as_dict(),
        "warm": warm_rubik.refresh_stats.as_dict(),
        "steady_state": steady_rubik.refresh_stats.as_dict(),
        "snapshot_incremental_us": incremental_s * 1e6,
        "snapshot_rebuild_us": rebuild_s * 1e6,
        "snapshot_speedup_vs_pr3": rebuild_s / incremental_s,
        "table_cache": TABLE_CACHE.stats(),
    }


def bench_decision_kernel(num_requests: int, load: float,
                          reps: int = 3) -> Dict:
    """The PR 5 incremental Eq. 2 decision kernel, three ways.

    * **path A/B**: the identical trace under the scalar, vectorized,
      kernel, and (when the library builds) native decision paths,
      best-of-``reps`` each with a fingerprint-warm table cache — the
      kernel must at least match the vectorized path at moderate load.
    * **overload A/B**: the same comparison on an overloaded trace
      (queue depths past ``CERT_MIN_QUEUE``), where the certificate
      fold + O(1) event paths are the operating point.
    * **counters**: the kernel's decision-path stats for both runs, and
      the steady-state constant-demand guard — every post-warmup
      refresh re-resolves to the same table pair, so the kernel must
      never be invalidated by one (``invalidations_tables <= 1``).
    """
    app = APPS[BENCH_APP]
    context = make_context(app, BENCH_SEED, num_requests)
    trace = Trace.generate_at_load(app, load, num_requests, BENCH_SEED)
    over_n = max(200, num_requests // 3)
    over_context = make_context(app, BENCH_SEED, over_n)
    over_trace = Trace.generate_at_load(app, 1.5, over_n, BENCH_SEED)
    TABLE_CACHE.clear()
    run_trace(trace, Rubik(), context)            # warm the table cache
    run_trace(over_trace, Rubik(), over_context)

    paths = {
        "scalar": dict(vectorized=False),
        "vectorized": dict(kernel=False),
        "kernel": dict(kernel=True),
    }
    if native_build.available():
        paths["native"] = dict(kernel="native")
    walls: Dict[str, float] = {p: float("inf") for p in paths}
    over_walls: Dict[str, float] = {p: float("inf") for p in paths}
    kernel_stats: Dict[str, Dict] = {}
    for _ in range(reps):
        for path, flags in paths.items():
            rubik = Rubik(**flags)
            t0 = time.perf_counter()
            run_trace(trace, rubik, context)
            walls[path] = min(walls[path], time.perf_counter() - t0)
            if path in ("kernel", "native"):
                kernel_stats[f"moderate_{path}"] = \
                    rubik.kernel_stats.as_dict()
            rubik = Rubik(**flags)
            t0 = time.perf_counter()
            run_trace(over_trace, rubik, over_context)
            over_walls[path] = min(over_walls[path],
                                   time.perf_counter() - t0)
            if path in ("kernel", "native"):
                kernel_stats[f"overload_{path}"] = \
                    rubik.kernel_stats.as_dict()
    # Back-compat aliases: the Python kernel's counters under the PR 5
    # key names, so trajectory diffs line up across bench files.
    kernel_stats["moderate"] = kernel_stats["moderate_kernel"]
    kernel_stats["overload"] = kernel_stats["overload_kernel"]

    steady_app = dataclasses.replace(app, service_cv=0.0, long_fraction=0.0)
    steady_context = make_context(steady_app, BENCH_SEED, num_requests)
    steady_trace = Trace.generate_at_load(
        steady_app, load, num_requests, BENCH_SEED)
    steady_rubik = Rubik()
    run_trace(steady_trace, steady_rubik, steady_context)
    kernel_stats["steady_state"] = steady_rubik.kernel_stats.as_dict()

    out = {
        "moderate": {f"{p}_wall_s": w for p, w in walls.items()},
        "overload": {f"{p}_wall_s": w for p, w in over_walls.items()},
        "kernel_speedup_vs_vectorized": walls["vectorized"] / walls["kernel"],
        "kernel_speedup_vs_scalar": walls["scalar"] / walls["kernel"],
        "overload_speedup_vs_vectorized":
            over_walls["vectorized"] / over_walls["kernel"],
        "overload_speedup_vs_scalar":
            over_walls["scalar"] / over_walls["kernel"],
        "kernel_stats": kernel_stats,
        "steady_refresh_stats": steady_rubik.refresh_stats.as_dict(),
    }
    if "native" in walls:
        out["native_speedup_vs_kernel"] = walls["kernel"] / walls["native"]
        out["overload_native_speedup_vs_kernel"] = \
            over_walls["kernel"] / over_walls["native"]
        out["overload_native_speedup_vs_scalar"] = \
            over_walls["scalar"] / over_walls["native"]
    return out


def bench_native_kernel(decision_kernel: Dict) -> Dict:
    """The PR 6 native C kernel: build/fallback status + headline walls.

    The A/B walls come from :func:`bench_decision_kernel` (same traces,
    same best-of estimator — no second measurement to drift from); this
    section adds the loader's build/fallback diagnostics, the span
    engagement proof of a default run (every decision must land in a
    counted branch of the native kernel), and the trajectory headline:
    the native overload wall vs BENCH_PR5's Python-kernel wall.
    """
    out: Dict[str, object] = {
        "available": native_build.available(),
        "build": native_build.build_info(),
    }
    if not native_build.available():
        out["fallback"] = "python kernel serves all dispatches"
        return out

    # Span engagement: a default (kernel="auto") run hands the whole
    # event loop to the C span kernel; the counters prove every decision
    # executed natively (one per arrival + one per completion).
    app = APPS[BENCH_APP]
    n = 600
    context = make_context(app, BENCH_SEED, n)
    trace = Trace.generate_at_load(app, 0.5, n, BENCH_SEED)
    rubik = Rubik()
    result = run_trace(trace, rubik, context)
    stats = rubik.kernel_stats.as_dict()
    out["span"] = {
        "decision_path": rubik.decision_path,
        "requests": len(result.requests),
        "decisions": stats["decisions"],
        "events_processed": result.events_processed,
        "kernel_stats": stats,
    }

    mod = decision_kernel["moderate"]
    over = decision_kernel["overload"]
    out["moderate_wall_s"] = mod["native_wall_s"]
    out["overload_wall_s"] = over["native_wall_s"]
    out["speedup_vs_kernel_moderate"] = \
        mod["kernel_wall_s"] / mod["native_wall_s"]
    out["speedup_vs_kernel_overload"] = \
        over["kernel_wall_s"] / over["native_wall_s"]
    out["speedup_vs_scalar_overload"] = \
        over["scalar_wall_s"] / over["native_wall_s"]
    out["overload_speedup_vs_pr5"] = (
        PR5_BASELINE["decision_overload_kernel_s"] / over["native_wall_s"])
    return out


def check_lint() -> Dict:
    """Invariant-checker status of the shipped ``repro`` tree.

    A bench point records perf *under the repo's contracts* — a tree
    with open determinism/ABI/flush findings can be fast for the wrong
    reasons (e.g. a ctypes mirror drift changing every decision), so
    ``main`` refuses to record one. The section keeps the scan summary
    in the trajectory file and the ``perf_smoke`` guard asserts it.
    """
    result = lint_paths()
    return {
        "clean": result.clean,
        "findings": [f.render() for f in result.findings],
        "files_scanned": result.files_scanned,
        "rules_run": result.rules_run,
    }


def run_benchmarks(quick: bool = False) -> Dict:
    cfg = QUICK if quick else FULL
    results = {
        "pr": PR_NUMBER,
        "quick": quick,
        "lint": check_lint(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "numpy": np.__version__,
        },
        "seed_baseline": SEED_BASELINE,
        "pr1_baseline": PR1_BASELINE,
        "pr2_baseline": PR2_BASELINE,
        "pr3_baseline": PR3_BASELINE,
        "pr4_baseline": PR4_BASELINE,
        "pr5_baseline": PR5_BASELINE,
        "pr6_baseline": PR6_BASELINE,
        "pr7_baseline": PR7_BASELINE,
        "pr9_baseline": PR9_BASELINE,
        "table_build": bench_table_build(cfg["table_reps"]),
        "controller_events": bench_controller_events(
            cfg["run_requests"], cfg["run_load"]),
        "load_sweep": bench_load_sweep(
            cfg["sweep_loads"], cfg["sweep_requests"]),
        "regenerate": bench_regenerate(
            cfg["regen_experiments"], cfg["regen_requests"]),
        "regenerate_cached": bench_regenerate_cached(
            cfg["regen_experiments"], cfg["regen_requests"]),
        "resilience": bench_resilience(cfg["resilience_requests"]),
        "fleet": bench_fleet(cfg["fleet_servers"], cfg["fleet_epochs"],
                             cfg["fleet_rpc"]),
        "refresh_churn": bench_refresh_churn(
            cfg["run_requests"], cfg["run_load"], cfg["snapshot_iters"]),
        "decision_kernel": bench_decision_kernel(
            cfg["run_requests"], cfg["run_load"]),
    }
    results["native_kernel"] = bench_native_kernel(
        results["decision_kernel"])
    return results


def main(argv: Optional[list] = None) -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced-scale smoke mode (<60 s)")
    parser.add_argument("--output", default=None,
                        help="JSON output path (default: BENCH_PR%d.json "
                             "at the repo root in full mode; none in "
                             "--quick mode)" % PR_NUMBER)
    args = parser.parse_args(argv)

    # Gate: never record a bench point for a tree that violates its own
    # invariants (python -m repro.lint shows the findings).
    lint = check_lint()
    if not lint["clean"]:
        for line in lint["findings"]:
            print(line, file=sys.stderr)
        raise SystemExit(
            f"refusing to record a bench point: {len(lint['findings'])} "
            "lint finding(s) — fix or suppress them first")

    results = run_benchmarks(quick=args.quick)
    print(json.dumps(results, indent=2))

    output = args.output
    if output is None and not args.quick:
        output = f"BENCH_PR{PR_NUMBER}.json"
    if output:
        with open(output, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {output}")
    return results


if __name__ == "__main__":
    main()

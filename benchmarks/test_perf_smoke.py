"""Tier-1 smoke test for the perf harness (marker: ``perf_smoke``).

Runs ``benchmarks/run_bench.py`` in ``--quick`` mode against a temp
output file and sanity-checks the emitted schema, so breakage in the
benchmark harness (or a catastrophic slowdown in a hot path) is caught
by the ordinary test flow without regenerating full figures.

Deselect with ``-m "not perf_smoke"`` when iterating on unrelated code.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
import run_bench  # noqa: E402


@pytest.mark.perf_smoke
def test_quick_bench_emits_trajectory_point(tmp_path):
    out = tmp_path / "bench.json"
    results = run_bench.main(["--quick", "--output", str(out)])

    # The file is valid JSON and matches what main() returned.
    on_disk = json.loads(out.read_text())
    assert on_disk["pr"] == run_bench.PR_NUMBER
    assert on_disk["quick"] is True

    # Invariant-checker gate (PR 8): a bench point is only recorded for
    # a tree that passes `python -m repro.lint`, and the scan summary
    # rides along in the trajectory file.
    lint = results["lint"]
    assert lint["clean"], "\n".join(lint["findings"])
    assert lint["files_scanned"] > 50
    assert len(lint["rules_run"]) == 7

    # Schema: every tracked section is present with sane values.
    table = results["table_build"]
    assert 0 < table["lazy_pair_ms"] <= table["materialized_pair_ms"]
    assert table["materialized_builds_per_s"] > 0

    events = results["controller_events"]
    assert events["events"] > 0
    assert events["events_per_s"] > 0
    assert events["requests_per_s"] > 0

    # Event-churn regression guard: a Rubik run costs one arrival plus
    # one completion event per request — DVFS transitions apply lazily
    # and must NOT consume simulator events. If this trips, something
    # reintroduced per-transition (or other per-request) heap traffic.
    assert (events["events"]
            <= run_bench.EVENTS_PER_REQUEST_BUDGET
            * run_bench.QUICK["run_requests"]), (
        f"event churn crept back in: {events['events']} events for "
        f"{run_bench.QUICK['run_requests']} requests")

    sweep = results["load_sweep"]
    assert sweep["wall_s"] > 0
    assert sweep["points"] == len(run_bench.QUICK["sweep_loads"])

    # Unified-runner guards: one regenerate-all invocation spawns the
    # shared worker pool at most once (zero on a single-CPU machine,
    # where the whole flow stays serial), and the process-wide
    # latency-bound memo means each (app, seed, num_requests) bound is
    # replayed at most once no matter how many points ask for it.
    regen = results["regenerate"]
    assert regen["wall_s"] > 0
    assert list(regen["experiments"]) == \
        list(run_bench.QUICK["regen_experiments"])
    assert regen["pools_created"] <= 1, (
        f"regenerate-all spawned {regen['pools_created']} pools; the "
        "shared WorkerPool must be created at most once per invocation")
    if regen["pools_created"] == 0:
        # Serial flow: the parent cache saw every bound request. table1
        # needs no bound; every ablation point shares (masstree,
        # seed 21, 600) — one replay total, however many points ask.
        assert regen["latency_bound_computed"] == 1
        assert regen["latency_bound_requested"] >= 1
    else:
        # Pooled flow: per-worker caches are not aggregated, and the
        # bench must say so rather than report parent-only counts.
        assert regen["latency_bound_computed"] is None
        assert regen["latency_bound_requested"] is None

    # Refresh-subsystem guards (PR 4). A warm rerun of the identical
    # trace must reuse every refresh from the table cache, and a
    # steady-state (constant-demand) run must rebuild tables at most
    # once after warm-up — its demand window normalizes to the same
    # fingerprint at every refresh, so repeated rebuilds mean the
    # incremental profiler or the fingerprint sprung a leak.
    churn = results["refresh_churn"]
    assert churn["refreshes"] >= 2
    cold, warm = churn["cold"], churn["warm"]
    assert cold["cache_misses"] >= 1
    assert cold["snapshots"] == cold["cache_hits"] + cold["cache_misses"]
    assert warm["cache_misses"] == 0, (
        f"warm rerun rebuilt {warm['cache_misses']} tables; identical "
        "demand windows must reuse the cached pairs")
    assert warm["cache_hits"] == warm["snapshots"] == cold["snapshots"]
    steady = churn["steady_state"]
    assert steady["snapshots"] >= 2
    assert steady["cache_misses"] <= 1, (
        f"steady-state run rebuilt tables {steady['cache_misses']} "
        "times; a stable demand window must rebuild at most once")
    assert steady["cache_hits"] == \
        steady["snapshots"] - steady["cache_misses"]
    assert churn["snapshot_incremental_us"] > 0
    assert churn["snapshot_rebuild_us"] > 0
    # Capacity cliff guard: one run's distinct fingerprints must fit the
    # cache, or the cold run evicts its own entries and the warm-rerun
    # guarantee above degrades for reasons invisible in the miss counts.
    assert churn["table_cache"]["evictions"] == 0, (
        f"refresh cache evicted {churn['table_cache']['evictions']} "
        "entries within one cold+warm pair; raise TailTableCache "
        "maxsize above the per-run refresh count "
        f"({churn['refreshes']} refreshes here)")

    # Decision-kernel guards (PR 5). The kernel path must cover every
    # decision through its counted branches, steady state must never
    # invalidate kernel state through a refresh (fingerprints re-resolve
    # to the same pair, which instead *carries* the state), and the
    # overload trace must actually exercise the certificate fold + O(1)
    # event paths the kernel exists for.
    dk = results["decision_kernel"]
    for section in ("moderate", "overload"):
        assert dk[section]["kernel_wall_s"] > 0
        assert dk[section]["vectorized_wall_s"] > 0
        assert dk[section]["scalar_wall_s"] > 0
    # `decisions` is defined as the sum of the branch counters, so the
    # independent check is against the event count: one decision per
    # arrival + one per completion, with no event escaping a counted
    # branch (a new early-return path that forgets its counter would
    # make this total come up short).
    mod = dk["kernel_stats"]["moderate"]
    assert mod["decisions"] == 2 * run_bench.QUICK["run_requests"]
    over = dk["kernel_stats"]["overload"]
    assert over["cert_folds"] > 0
    assert over["fast_arrivals"] + over["fast_completions"] > 0
    steady = dk["kernel_stats"]["steady_state"]
    assert steady["invalidations_tables"] <= 1, (
        f"steady-state refreshes invalidated the kernel "
        f"{steady['invalidations_tables']} times; identical fingerprints "
        "must re-resolve to the same table pair and carry kernel state")
    assert steady["refresh_carries"] > 0
    assert dk["steady_refresh_stats"]["object_carries"] == \
        steady["refresh_carries"]

    # Native-kernel guards (PR 6). The section must always report the
    # loader's status; when the library is available the default path
    # must actually be native, the span loop must cover every decision
    # (one per arrival + one per completion — a C branch that forgot
    # its counter would come up short), and its counters must agree
    # with the Python kernel's on the identical trace. When it is not,
    # the fallback must be recorded, not silently absent.
    nk = results["native_kernel"]
    if nk["available"]:
        assert nk["build"]["attempted"] and nk["build"]["loaded"]
        span = nk["span"]
        assert span["decision_path"] == "native"
        assert span["decisions"] == 2 * span["requests"]
        assert nk["moderate_wall_s"] > 0
        assert nk["overload_wall_s"] > 0
        assert dk["kernel_stats"]["moderate_native"] == \
            dk["kernel_stats"]["moderate_kernel"]
        assert dk["kernel_stats"]["overload_native"] == \
            dk["kernel_stats"]["overload_kernel"]
    else:
        assert nk["fallback"]
        # Either the env gate opted out, or a build/load failure was
        # recorded — never a silent absence.
        assert nk["build"]["env_mode"] == "0" or nk["build"]["error"]

    # Artifact-store guards (PR 7). A warm regeneration over a freshly
    # cold-filled store must recompute zero cells — every cell replays
    # from disk (zero misses, zero puts), the hit count equals the cell
    # population the cold pass persisted, and the warm wall collapses to
    # a small fraction of the cold one (replay is deserialization, not
    # simulation). A corrupt store would surface as errors > 0.
    rc = results["regenerate_cached"]
    assert list(rc["experiments"]) == \
        list(run_bench.QUICK["regen_experiments"])
    assert rc["cells"] > 0
    assert rc["cold"]["misses"] == rc["cold"]["puts"] == rc["cells"]
    assert rc["cold"]["hits"] == 0 and rc["cold"]["errors"] == 0
    assert rc["warm"]["misses"] == 0 and rc["warm"]["puts"] == 0, (
        f"warm regeneration recomputed {rc['warm']['misses']} cells; "
        "a fully-cached store must serve every cell from disk")
    assert rc["warm"]["hits"] == rc["cells"]
    assert rc["warm"]["errors"] == 0
    assert rc["warm_wall_s"] <= 0.2 * rc["cold_wall_s"], (
        f"warm regeneration took {rc['warm_wall_s']:.3f}s vs cold "
        f"{rc['cold_wall_s']:.3f}s; cached replay must be >=5x faster")

    # Resilience guards (PR 9). The hardened executor is opt-in, so its
    # fault-free path must be a bitwise no-op: identical results to
    # plain parallel_map, every retry/failure/rebuild counter at zero,
    # no ambient fault plan leaking in from the environment, and the
    # per-cell dispatch overhead within noise of the baseline batch.
    res = results["resilience"]
    assert res["points"] > 0
    assert res["fault_plan_active"] is False, (
        "a REPRO_FAULT_PLAN was active while recording a bench point")
    assert res["identical"] is True, (
        "fault-free resilient_map diverged bitwise from parallel_map")
    assert (res["retries"], res["failures"], res["timeouts"],
            res["worker_losses"], res["pool_rebuilds"]) == (0,) * 5
    assert res["degraded_serial"] is False
    assert res["overhead_vs_baseline"] < 2.0, (
        f"resilient dispatch cost {res['overhead_vs_baseline']:.2f}x "
        "the plain sweep on the fault-free path")

    # Fleet guards (PR 10). Calibration must have persisted one anchor
    # cell per (app, anchor load) into the section's throwaway store;
    # every tracked size must report a positive wall and throughput; the
    # router must never shed more than the shed-on-overflow baseline;
    # and the shard-scaling A/B must be bitwise-identical — invariant
    # 21 is the layer's contract, so a False here means the shard
    # partition leaked into the numbers.
    fleet = results["fleet"]
    from repro.fleet.routing import ANCHOR_LOADS
    from repro.workloads.apps import app_names
    assert fleet["anchor_cells"] == len(ANCHOR_LOADS) * len(app_names())
    assert fleet["calibration_wall_s"] > 0
    assert list(fleet["scale"]) == \
        [str(n) for n in run_bench.QUICK["fleet_servers"]]
    for entry in fleet["scale"].values():
        assert entry["wall_s"] > 0
        assert entry["servers_per_s"] > 0
        assert entry["routed_shed_load"] <= entry["baseline_shed_load"]
    shard = fleet["shard_scaling"]
    assert shard["servers"] == max(run_bench.QUICK["fleet_servers"])
    assert shard["one_shard_wall_s"] > 0
    assert shard["two_shard_wall_s"] > 0
    assert shard["identical"] is True, (
        "2-shard routed fleet diverged bitwise from the 1-shard "
        "reference (invariant 21)")

    # The seed reference the trajectory is measured against is recorded
    # alongside every point.
    assert results["seed_baseline"] == run_bench.SEED_BASELINE


def test_dirty_tree_refuses_to_record(tmp_path, monkeypatch):
    """The lint gate: findings abort main() before any benchmark runs,
    and no output file is written."""
    out = tmp_path / "bench.json"
    monkeypatch.setattr(run_bench, "check_lint", lambda: {
        "clean": False,
        "findings": ["x.py:1: [determinism] planted finding"],
        "files_scanned": 1,
        "rules_run": ["determinism"],
    })
    with pytest.raises(SystemExit, match="refusing to record"):
        run_bench.main(["--quick", "--output", str(out)])
    assert not out.exists()

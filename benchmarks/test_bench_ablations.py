"""Bench: Rubik design-choice ablations (DESIGN.md; not a paper figure)."""

from benchmarks.conftest import run_once
from repro.experiments import ablations

N = 5000


def test_ablations(benchmark):
    res = run_once(benchmark, ablations.run_ablations, num_requests=N)
    print("\n" + res.table())
    paper = res.rows["Rubik (paper config)"]
    # Every Rubik variant still honours the bound (the analytical model,
    # not any single knob, provides the guarantee).
    for name, vals in res.rows.items():
        if name.startswith("Pegasus"):
            continue  # feedback-only control has no guarantee
        assert vals["violations"] <= 0.07, name
    # Feedback buys extra savings over the conservative base.
    assert paper["savings"] >= res.rows["no feedback"]["savings"] - 0.01
    # Coarse feedback alone (Pegasus) cannot beat Rubik.
    assert paper["savings"] > res.rows["Pegasus (feedback only)"]["savings"]

"""Bench: regenerate Table 1 (latency-correlation analysis)."""

from benchmarks.conftest import run_once
from repro.experiments import table1_correlations

N = 6000


def test_table1_correlations(benchmark):
    res = run_once(benchmark, table1_correlations.run_table1,
                   num_requests=N)
    print("\n" + res.table())
    for app, (svc, qps, queue) in res.per_app.items():
        # Queue length is the dominant predictor for every app.
        assert queue >= max(svc, qps), app
        assert queue > 0.55, app
    # Tight-service apps: service time carries ~no information.
    assert res.per_app["masstree"][0] < 0.25
    # Variable-service apps: service time matters more.
    assert res.per_app["shore"][0] > res.per_app["masstree"][0]

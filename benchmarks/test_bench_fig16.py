"""Bench: regenerate Fig. 16 (datacenter power and server count)."""

from benchmarks.conftest import run_once
from repro.experiments import fig16_datacenter

LOADS = (0.1, 0.3, 0.6)


def test_fig16_datacenter(benchmark):
    res = run_once(benchmark, fig16_datacenter.run_fig16,
                   loads=LOADS, num_mixes=2, requests_per_core=700)
    print("\n" + res.table())
    low, mid, high = res.comparisons
    # Colocation always wins, and wins more at low LC load.
    for comp in res.comparisons:
        assert comp.power_reduction > 0
        assert comp.server_reduction > 0
    assert low.server_reduction > high.server_reduction
    # Paper headline at 10% load: ~31% power, ~41% fewer servers.
    assert low.power_reduction > 0.2
    assert low.server_reduction > 0.3
    # Colocation still helps at 60% load (paper: 17% power, 19% servers).
    assert high.power_reduction > 0.08

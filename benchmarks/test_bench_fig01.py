"""Bench: regenerate Fig. 1 (intro teaser — Rubik vs StaticOracle)."""

from benchmarks.conftest import run_once
from repro.experiments import fig01_intro

N = 4000


def test_fig1a_energy_per_request(benchmark):
    res = run_once(benchmark, fig01_intro.run_fig1a, num_requests=N)
    print("\n" + res.table())
    # Shape: Rubik below StaticOracle at every load.
    assert all(r < s for r, s in zip(res.rubik_mj, res.static_oracle_mj))


def test_fig1b_load_step(benchmark):
    res = run_once(benchmark, fig01_intro.run_fig1b, num_requests=N)
    print("\n" + res.table())
    # Shape: Rubik's post-step tail stays at/below ~the bound.
    post = res.rubik_tail_ms[res.rubik_window_times > 1.2]
    assert post.max() <= res.bound_ms * 1.35

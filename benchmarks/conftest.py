"""Shared benchmark configuration.

Each benchmark regenerates one paper table/figure at reduced scale
(pytest-benchmark measures the harness; the printed reports go to stdout
with ``-s``). ``pedantic(rounds=1)`` is used throughout: these are
experiment reproductions, not microbenchmarks — one round gives the
shape, and wall-clock per figure stays in seconds.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)

"""Setup shim for environments without the `wheel` package.

Enables `pip install -e . --no-build-isolation` (legacy editable install)
on machines where PEP 517 editable builds are unavailable offline.
"""
from setuptools import setup

setup()

"""Setup shim for environments without the `wheel` package.

Enables `pip install -e . --no-build-isolation` (legacy editable install)
on machines where PEP 517 editable builds are unavailable offline.

Also offers the native Rubik kernel as an *optional* install-time build:
the shared library is compiled with the system C compiler when one is
available, and skipped silently otherwise — the package is pure-Python
plus an optional accelerator, never a required extension (runtime falls
back to build-on-first-use, and failing that to the Python kernel).

Installs the ``repro-lint`` console script — the invariant checker suite
(``python -m repro.lint``) as a first-class command.
"""
from setuptools import find_packages, setup
from setuptools.command.build_py import build_py


class _BuildWithNative(build_py):
    """Best-effort native-kernel build during install (never fatal)."""

    def run(self):
        super().run()
        try:
            import sys
            sys.path.insert(0, "src")
            from repro.core._native import build as native_build
            native_build.ensure_built()
        except Exception as exc:  # noqa: BLE001 — optional accelerator
            print(f"note: native Rubik kernel not prebuilt ({exc}); "
                  "it will be built on first use or fall back to Python")


setup(
    name="rubik-repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.core._native": ["*.c"]},
    entry_points={
        "console_scripts": ["repro-lint=repro.lint.__main__:main"],
    },
    cmdclass={"build_py": _BuildWithNative},
)

#!/usr/bin/env python
"""Quickstart: run Rubik on a key-value-store workload and compare it
against the fixed-frequency baseline and StaticOracle.

Shows the core loop of the library: generate a request trace, define the
tail-latency bound the paper's way (fixed-frequency tail at 50% load),
run schemes, and read out tail latency / power / energy.

Run:  python examples/quickstart.py
"""

from repro import (
    FixedFrequency,
    NOMINAL_FREQUENCY_HZ,
    Rubik,
    SchemeContext,
    StaticOracle,
    Trace,
    run_trace,
)
from repro.schemes.replay import replay
from repro.workloads.apps import MASSTREE


def main() -> None:
    app = MASSTREE
    seed = 1
    load = 0.4

    # 1. The latency bound: the 95th-percentile latency the server
    #    achieves at nominal frequency under 50% load (paper Sec. 5.2).
    bound_trace = Trace.generate_at_load(app, load=0.5, seed=seed)
    bound_s = replay(bound_trace, NOMINAL_FREQUENCY_HZ).tail_latency()
    context = SchemeContext(latency_bound_s=bound_s, app=app)
    print(f"app={app.name}  load={load:.0%}  "
          f"tail bound={bound_s * 1e3:.3f} ms")

    # 2. One trace, three schemes. All schemes see identical requests.
    trace = Trace.generate_at_load(app, load=load, seed=seed)

    fixed = run_trace(trace, FixedFrequency(), context)
    static = StaticOracle()
    static.tune(trace, context)
    static_run = run_trace(trace, static, context)
    rubik = run_trace(trace, Rubik(), context)

    # 3. Results.
    print(f"\n{'scheme':<16} {'tail (ms)':>10} {'power (W)':>10} "
          f"{'mJ/req':>8} {'viol%':>6}")
    for name, run in (("Fixed@2.4GHz", fixed),
                      (f"Static@{static.tuned_hz / 1e9:.1f}GHz", static_run),
                      ("Rubik", rubik)):
        print(f"{name:<16} {run.tail_latency() * 1e3:>10.3f} "
              f"{run.mean_core_power_w:>10.2f} "
              f"{run.energy_per_request_j * 1e3:>8.3f} "
              f"{run.violation_rate(bound_s) * 100:>6.1f}")

    savings = 1 - rubik.mean_core_power_w / fixed.mean_core_power_w
    print(f"\nRubik saves {savings:.0%} core power vs fixed-frequency "
          f"while holding the tail bound.")
    print("Rubik busy-time frequency residency:")
    for f, frac in rubik.busy_freq_hist.items():
        if frac >= 0.01:
            print(f"  {f / 1e9:.1f} GHz: {'#' * int(frac * 50)} {frac:.0%}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Scenario: a web-search leaf node (xapian) rides out a traffic spike.

This is the paper's motivating datacenter scenario (Secs. 1 and 5.4): a
leaf node serving at 25% load sees traffic double, then triple. A static
setting tuned for the quiet period violates the tail during the spike;
Rubik re-evaluates its analytical model on every arrival/completion and
absorbs the spike within milliseconds — no retuning, no app hints.

Run:  python examples/load_spike_websearch.py
"""

import numpy as np

from repro import Rubik, SchemeContext, StaticOracle, Trace, run_trace
from repro.analysis.windows import windowed_series
from repro.config import NOMINAL_FREQUENCY_HZ
from repro.schemes.replay import replay
from repro.sim.arrivals import LoadSchedule
from repro.workloads.apps import XAPIAN


def sparkline(values, lo, hi, width=60):
    """Coarse text plot of a series."""
    ticks = " .:-=+*#%@"
    span = max(hi - lo, 1e-12)
    idx = np.clip(((np.asarray(values) - lo) / span * (len(ticks) - 1))
                  .astype(int), 0, len(ticks) - 1)
    return "".join(ticks[i] for i in idx[:width])


def main() -> None:
    app = XAPIAN
    seed = 7
    n = 6000

    bound = replay(Trace.generate_at_load(app, 0.5, n, seed),
                   NOMINAL_FREQUENCY_HZ).tail_latency()
    context = SchemeContext(latency_bound_s=bound, app=app)

    # Quiet 25% load for 3 s, spike to 50% for 3 s, then 75% for 3 s.
    schedule = LoadSchedule.from_loads(
        [(0.0, 0.25), (3.0, 0.5), (6.0, 0.75)], app.saturation_qps)
    trace = Trace.generate(app, schedule, n, seed)

    static = StaticOracle()
    static.tune(Trace.generate_at_load(app, 0.25, n, seed), context)
    static_run = run_trace(trace, static, context)
    rubik_run = run_trace(trace, Rubik(), context)

    print(f"web-search leaf ({app.name}), bound={bound * 1e3:.2f} ms, "
          f"StaticOracle tuned at 25% load -> {static.tuned_hz / 1e9:.1f} GHz")
    for name, run in (("StaticOracle", static_run), ("Rubik", rubik_run)):
        finish = np.array([r.finish_time for r in run.requests])
        lats = np.array([r.response_time for r in run.requests])
        t, tail = windowed_series(finish, lats, window_s=0.25)
        norm = tail / bound
        print(f"\n{name}: rolling p95 / bound over time "
              f"(rows at 0.25 s steps; '@'=2x bound)")
        print("  " + sparkline(norm, 0.0, 2.0))
        worst = norm.max()
        print(f"  worst window: {worst:.2f}x bound; "
              f"requests over bound: {run.violation_rate(bound):.1%}")

    p_static = static_run.mean_core_power_w
    p_rubik = rubik_run.mean_core_power_w
    print(f"\nmean core power: StaticOracle {p_static:.2f} W, "
          f"Rubik {p_rubik:.2f} W — Rubik spends the extra watts during "
          "the spike, which is exactly what keeps the tail from "
          "exploding; the quiet phase still runs at the bottom of the "
          "DVFS grid.")


if __name__ == "__main__":
    main()

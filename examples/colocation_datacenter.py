#!/usr/bin/env python
"""Scenario: colocating batch analytics with a latency-critical service.

A datacenter operator wants to stop segregating latency-critical (LC)
and batch servers (paper Sec. 6). This example colocates a key-value
store at 60% load with a random SPEC-like batch mix on one 6-core server
and compares RubikColoc against StaticColoc and hardware DVFS governors
(HW-T, HW-TPW), then prints the headline datacenter numbers.

Run:  python examples/colocation_datacenter.py
"""

from repro.coloc.batch import generate_mixes
from repro.coloc.datacenter import compare_datacenters
from repro.coloc.server import COLOC_SCHEME_NAMES, run_colocated_server
from repro.experiments.common import make_context
from repro.workloads.apps import MASSTREE


def main() -> None:
    app = MASSTREE
    context = make_context(app, seed=21, num_requests=2000)
    bound = context.latency_bound_s
    mix = generate_mixes(num_mixes=1, seed=0)[0]

    print(f"LC app: {app.name} at 60% load, bound={bound * 1e3:.3f} ms")
    print(f"batch mix: {', '.join(a.name for a in mix)}\n")
    print(f"{'scheme':<13} {'tail/bound':>10} {'core util':>10} "
          f"{'core W':>8} {'batch GIPS':>11}")
    for scheme in COLOC_SCHEME_NAMES:
        res = run_colocated_server(
            app, 0.6, mix, scheme, context, seed=5, requests_per_core=900)
        gips = sum(res.batch_instructions.values()) / res.duration_s / 1e9
        flag = "  <-- violates!" if res.tail_latency() > bound * 1.05 else ""
        print(f"{scheme:<13} {res.tail_latency() / bound:>10.2f} "
              f"{res.core_utilization:>10.1%} "
              f"{res.mean_core_power_w:>8.1f} {gips:>11.2f}{flag}")

    print("\nRubikColoc keeps the LC tail while running batch work in "
          "every idle cycle.")

    print("\nDatacenter view (segregated vs RubikColoc-colocated), "
          "LC load 10%:")
    comp = compare_datacenters(0.1, seed=21, num_mixes=2,
                               requests_per_core=600)
    print(f"  power reduction : {comp.power_reduction:.0%}")
    print(f"  server reduction: {comp.server_reduction:.0%}")
    print(f"  (paper: up to 31% power, 41% fewer servers at 10% load)")


if __name__ == "__main__":
    main()
